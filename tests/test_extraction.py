"""Tests for the three track-boundary extraction methods (Section 4.1)."""

import pytest

from repro.core import (
    CharacterizationError,
    DixtracExtractor,
    GeneralExtractor,
    ScsiBoundaryScanner,
    TraxtentMap,
)
from repro.disksim import (
    DiskDrive,
    DiskGeometry,
    ScsiInterface,
    SpareScheme,
    small_test_specs,
)


# --------------------------------------------------------------------------- #
# DIXtrac (SCSI query based)
# --------------------------------------------------------------------------- #

def test_dixtrac_exact_on_clean_drive(clean_geometry, truth_map):
    extracted, description = DixtracExtractor(ScsiInterface(clean_geometry)).extract()
    assert extracted == truth_map
    assert description.surfaces == clean_geometry.surfaces
    assert len(description.zones) == len(clean_geometry.zones)
    assert description.spare_scheme == SpareScheme.SECTORS_PER_CYLINDER


def test_dixtrac_exact_with_defects(defective_geometry, defective_truth_map):
    extracted, description = DixtracExtractor(
        ScsiInterface(defective_geometry)
    ).extract()
    assert extracted == defective_truth_map
    assert len(description.defects) == len(defective_geometry.defects)


def test_dixtrac_translation_budget(defective_geometry):
    """The paper: complete maps from 'fewer than 30,000 LBN translations',
    essentially independent of capacity.  Our small drive needs far fewer;
    the key property is that the count does not scale with track count."""
    scsi = ScsiInterface(defective_geometry)
    _, description = DixtracExtractor(scsi).extract()
    tracks = defective_geometry.num_tracks
    assert description.translations_used < 30_000
    assert description.translations_used < tracks * 10


def test_dixtrac_classifies_defect_handling(defective_geometry):
    _, description = DixtracExtractor(ScsiInterface(defective_geometry)).extract()
    truth = {
        (d.cylinder, d.surface, d.sector): d.handling
        for d in defective_geometry.defects
    }
    classified = description.defect_handling
    matching = sum(
        1 for key, handling in classified.items() if truth.get(key) == handling
    )
    assert matching >= int(0.9 * len(truth))


def test_dixtrac_unknown_scheme_fails_loudly():
    """Spare-track schemes are outside this DIXtrac's expertise, mirroring
    the paper's observation that new sparing schemes can baffle it; the
    failure must be an explicit error, not a silently wrong map."""
    specs = small_test_specs().scaled(
        spare_scheme=SpareScheme.TRACKS_PER_ZONE, spare_count=6
    )
    geometry = DiskGeometry(specs)
    with pytest.raises(CharacterizationError):
        DixtracExtractor(ScsiInterface(geometry)).extract()


def test_dixtrac_handles_spare_free_drive():
    specs = small_test_specs().scaled(spare_scheme=SpareScheme.NONE, spare_count=0)
    geometry = DiskGeometry(specs)
    extracted, description = DixtracExtractor(ScsiInterface(geometry)).extract()
    assert extracted == TraxtentMap.from_geometry(geometry)
    assert description.spare_scheme == SpareScheme.NONE


# --------------------------------------------------------------------------- #
# Expertise-free SCSI scanner
# --------------------------------------------------------------------------- #

def test_scanner_exact_with_defects(defective_geometry, defective_truth_map):
    extracted, stats = ScsiBoundaryScanner(ScsiInterface(defective_geometry)).extract()
    assert extracted == defective_truth_map
    assert stats.tracks_found == len(defective_truth_map)


def test_scanner_translation_efficiency(clean_geometry, truth_map):
    """On a defect-free drive the per-surface prediction succeeds for almost
    every track, so the scanner needs only a few translations per track
    (the paper quotes 2-2.3 for most disks)."""
    _, stats = ScsiBoundaryScanner(ScsiInterface(clean_geometry)).extract()
    assert stats.translations_per_track < 5.0


def test_scanner_fallback_works_as_dixtrac_backup():
    """The combination the paper recommends: when DIXtrac's expert system
    fails on an unknown sparing scheme, the SCSI fallback still produces an
    exact map."""
    specs = small_test_specs().scaled(
        spare_scheme=SpareScheme.TRACKS_PER_ZONE, spare_count=6
    )
    geometry = DiskGeometry(specs)
    truth = TraxtentMap.from_geometry(geometry)
    extracted, _ = ScsiBoundaryScanner(ScsiInterface(geometry)).extract()
    assert extracted == truth


# --------------------------------------------------------------------------- #
# General (timing based) extractor
# --------------------------------------------------------------------------- #

def test_general_extractor_exact_on_prefix(defective_geometry, defective_truth_map, small_specs):
    drive = DiskDrive(small_specs, geometry=defective_geometry)
    end = defective_truth_map[30].end_lbn
    extracted, stats = GeneralExtractor(drive).extract(0, end)
    assert extracted.to_pairs() == defective_truth_map.restrict(0, end).to_pairs()
    assert stats.tracks_found == 31
    assert stats.fast_verifications > 0


def test_general_extractor_spans_zone_boundary(clean_geometry, truth_map, small_specs):
    drive = DiskDrive(small_specs, geometry=clean_geometry)
    zone0_end = clean_geometry.zone_lbn_range(0)[1]
    start = truth_map.extent_of(zone0_end - 1).first_lbn
    zone1_extents = [e for e in truth_map if e.first_lbn >= zone0_end]
    end = zone1_extents[2].end_lbn  # three whole tracks into zone 1
    extracted, _ = GeneralExtractor(drive).extract(start, end)
    reference = [
        extent for extent in truth_map if start <= extent.first_lbn and extent.end_lbn <= end
    ]
    assert extracted.to_pairs() == [(e.first_lbn, e.length) for e in reference]


def test_general_extractor_fails_without_cache_defeat(clean_geometry, small_specs, truth_map):
    """Without the interleaved cache-flushing reads, probe timings collapse
    to cache hits and the extracted boundaries are wrong -- demonstrating
    why the paper's algorithm goes to the trouble."""
    drive = DiskDrive(small_specs, geometry=clean_geometry)
    end = truth_map[6].end_lbn
    extracted, _ = GeneralExtractor(drive, defeat_cache=False).extract(0, end)
    reference = truth_map.restrict(0, end)
    assert extracted.to_pairs() != reference.to_pairs()


def test_general_extractor_counts_probe_overhead(clean_geometry, small_specs, truth_map):
    drive = DiskDrive(small_specs, geometry=clean_geometry)
    end = truth_map[10].end_lbn
    _, stats = GeneralExtractor(drive).extract(0, end)
    assert stats.probes > 0
    assert stats.flush_reads > stats.probes  # flushing dominates the request count
    assert stats.simulated_ms > 0
    assert stats.probes_per_track > 1
