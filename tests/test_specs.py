"""Tests for the drive specification database (paper Table 1)."""

import pytest

from repro.disksim import (
    SECTOR_SIZE,
    TABLE1_ORDER,
    SpareScheme,
    SpecError,
    available_models,
    get_specs,
    small_test_specs,
)


def test_table1_models_all_present():
    assert available_models() == list(TABLE1_ORDER)
    for name in TABLE1_ORDER:
        specs = get_specs(name)
        assert specs.name == name


def test_lookup_is_case_insensitive():
    assert get_specs("quantum atlas 10k ii").name == "Quantum Atlas 10K II"


def test_unknown_model_raises():
    with pytest.raises(SpecError):
        get_specs("Seagate Barracuda 7200.7")


def test_atlas_10k_ii_matches_paper_table1():
    specs = get_specs("Quantum Atlas 10K II")
    assert specs.rpm == 10000
    assert specs.head_switch_ms == pytest.approx(0.6)
    assert specs.avg_seek_ms == pytest.approx(4.7)
    assert specs.max_sectors_per_track == 528
    assert specs.min_sectors_per_track == 353
    assert specs.num_tracks == 52014
    assert specs.zero_latency is True


def test_rotation_time_follows_rpm():
    assert get_specs("Quantum Atlas 10K II").rotation_ms == pytest.approx(6.0)
    assert get_specs("Seagate Cheetah X15").rotation_ms == pytest.approx(4.0)
    assert get_specs("HP C2247").rotation_ms == pytest.approx(60000 / 5400)


def test_first_zone_track_size_matches_figure1():
    # Figure 1 annotates the Atlas 10K II first zone as 264 KB per track.
    specs = get_specs("Quantum Atlas 10K II")
    assert specs.max_track_bytes == 264 * 1024


def test_head_switch_trend_small_improvement():
    """Table 1's point: head-switch time improved far less than seek/RPM."""
    old = get_specs("HP C2247")
    new = get_specs("Quantum Atlas 10K II")
    assert old.rpm * 1.8 < new.rpm
    assert old.avg_seek_ms > 2 * new.avg_seek_ms
    # Head switch improved by well under a factor of two.
    assert new.head_switch_ms > old.head_switch_ms / 2


def test_sector_time_and_skew_consistency():
    specs = get_specs("Quantum Atlas 10K II")
    spt = specs.max_sectors_per_track
    assert specs.sector_time_ms(spt) * spt == pytest.approx(specs.rotation_ms)
    skew = specs.track_skew_sectors(spt)
    # Skew must cover the head switch but stay a small fraction of a track.
    assert skew * specs.sector_time_ms(spt) >= specs.head_switch_ms
    assert skew < spt / 4


def test_cylinder_skew_exceeds_track_skew():
    specs = get_specs("Quantum Atlas 10K")
    spt = specs.max_sectors_per_track
    assert specs.cylinder_skew_sectors(spt) > specs.track_skew_sectors(spt)


def test_scaled_copy_preserves_timing_parameters():
    base = get_specs("Quantum Atlas 10K II")
    small = small_test_specs()
    assert small.rpm == base.rpm
    assert small.head_switch_ms == base.head_switch_ms
    assert small.max_sectors_per_track == base.max_sectors_per_track
    assert small.num_tracks < base.num_tracks


def test_invalid_specs_rejected():
    base = get_specs("Quantum Atlas 10K II")
    with pytest.raises(SpecError):
        base.scaled(num_tracks=7)  # not a multiple of surfaces
    with pytest.raises(SpecError):
        base.scaled(rpm=0)
    with pytest.raises(SpecError):
        base.scaled(spare_scheme="bogus")


def test_peak_media_rate_reasonable():
    specs = get_specs("Quantum Atlas 10K II")
    # 264 KB per 6 ms revolution is about 45 MB/s ("40 MB/s streaming").
    assert 35 < specs.peak_media_rate_mb_s < 50


def test_spare_scheme_constants():
    assert set(SpareScheme.ALL) == {
        SpareScheme.NONE,
        SpareScheme.SECTORS_PER_TRACK,
        SpareScheme.SECTORS_PER_CYLINDER,
        SpareScheme.TRACKS_PER_ZONE,
    }
    assert SECTOR_SIZE == 512
