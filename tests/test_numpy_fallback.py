"""numpy-free degradation: a worker without numpy must fall back to the
exact scalar paths after a *single* import attempt and a single warning.

Before PR 4, :func:`repro.disksim.geometry._numpy` re-attempted the import
on every batch -- a spawn worker in a numpy-less environment paid the
failed-import cost per ``translate_batch`` call and stayed silent about
it.  The import result is now cached at module level, so these tests
monkeypatch numpy away, reset the cache, and assert exactly one attempt,
exactly one :class:`RuntimeWarning`, and correct scalar results for both
the translation path and the replay engine's kernel auto-selection.
"""

from __future__ import annotations

import builtins
import random
import warnings

import pytest

from repro.disksim import DiskDrive, DiskGeometry, small_test_specs
from repro.sim import Trace, TraceReplayEngine

SMALL = dict(cylinders_per_zone=12, num_zones=3)


@pytest.fixture()
def no_numpy(monkeypatch):
    """Make numpy unimportable and reset the module-level import cache.

    Yields the list of blocked import attempts so tests can assert the
    import is tried exactly once per process, not once per batch.
    """
    from repro.disksim import geometry as geometry_module

    attempts = []
    real_import = builtins.__import__

    def blocked_import(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            attempts.append(name)
            raise ImportError("numpy disabled for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(
        geometry_module, "_NUMPY_CACHE", geometry_module._NUMPY_UNRESOLVED
    )
    monkeypatch.setattr(builtins, "__import__", blocked_import)
    yield attempts
    # Leave the cache unresolved so the next caller re-imports real numpy.
    geometry_module._NUMPY_CACHE = geometry_module._NUMPY_UNRESOLVED


def test_translate_batch_degrades_with_single_warning(no_numpy):
    geometry = DiskGeometry(small_test_specs(**SMALL))
    lbns = [0, 5, 700, geometry.total_lbns - 1]
    with pytest.warns(RuntimeWarning, match="numpy is not installed"):
        tracks, cylinders, surfaces, sectors = geometry.translate_batch(lbns)
    for lbn, track, cylinder, surface, sector in zip(
        lbns, tracks, cylinders, surfaces, sectors
    ):
        address = geometry.lbn_to_physical(lbn)
        assert (cylinder, surface, sector) == (
            address.cylinder, address.surface, address.sector
        )
        assert track == geometry.track_of_lbn(lbn)
    # Further batches neither warn again nor re-attempt the import.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        geometry.translate_batch(lbns)
        geometry.translate_batch(lbns)
    assert len(no_numpy) == 1


def test_replay_degrades_to_scalar_without_numpy(no_numpy):
    drive = DiskDrive(small_test_specs(**SMALL))
    rng = random.Random(7)
    trace = Trace()
    for i in range(50):
        trace.append(i * 1.0, rng.randrange(0, drive.geometry.total_lbns - 64),
                     rng.randint(1, 64), "read")
    engine = TraceReplayEngine(drive, fast=True)
    with pytest.warns(RuntimeWarning, match="numpy is not installed"):
        stats = engine.replay(trace)
    assert engine.last_replay_path == "scalar"
    assert engine.last_fast_reason == "numpy unavailable"
    assert stats.issued_requests == len(trace)
    # A second replay goes straight to the scalar path: no new attempt.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        engine.replay(trace)
    assert len(no_numpy) == 1
