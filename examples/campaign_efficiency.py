#!/usr/bin/env python3
"""Campaigns: the paper's efficiency-vs-I/O-size sweep as one declaration.

A Campaign declares axes over any scenario field (dotted paths) and runs
every combination through one call -- serial or process-parallel, with an
on-disk ResultStore that makes re-runs and interrupted sweeps free.

Run with:  python examples/campaign_efficiency.py
The same sweep, from its checked-in JSON form:
           python -m repro sweep examples/campaign_efficiency.json
"""

import tempfile

from repro import Campaign, Scenario
from repro.analysis import format_series


def main() -> None:
    # Base scenario: tworeq random reads on a scaled-down Atlas 10K II
    # (identical timing, fewer cylinders, so the sweep runs in seconds).
    base = (
        Scenario("efficiency")
        .drive("Quantum Atlas 10K II", cylinders_per_zone=20, num_zones=3)
        .efficiency(n_requests=100, queue_depth=2)
    )

    # Two axes: track alignment on/off, crossed with four request sizes
    # (528 sectors = one 264 KB track).  2 x 4 = 8 concrete scenarios.
    campaign = (
        Campaign("efficiency-vs-size")
        .base(base)
        .axis("traxtent", [True, False])
        .axis("options.sizes_sectors", [[132], [264], [528], [1056]])
    )

    with tempfile.TemporaryDirectory() as store:
        # First pass computes all 8 points (workers=2 fans them out over a
        # process pool; the results are bitwise-identical to workers=1).
        result = campaign.run(workers=2, store=store)
        print(result.table(metrics=["io_kb", "efficiency", "head_time_ms"]))
        print(result.summary())

        # Second pass against the same store: nothing is recomputed.
        again = campaign.run(store=store)
        print(again.summary())
        assert again.executed == 0

    # The long-form export feeds the analysis helpers directly.
    aligned = result.series("io_kb", "efficiency", where={"traxtent": True})
    unaligned = result.series("io_kb", "efficiency", where={"traxtent": False})
    print()
    print(format_series("track-aligned", aligned, "I/O (KB)", "efficiency"))
    print()
    print(format_series("unaligned", unaligned, "I/O (KB)", "efficiency"))

    track_aligned = result.find(
        {"traxtent": True, "options.sizes_sectors": [528]}
    )
    track_unaligned = result.find(
        {"traxtent": False, "options.sizes_sectors": [528]}
    )
    win = (
        track_aligned.result.metrics["efficiency"]
        / track_unaligned.result.metrics["efficiency"]
        - 1
    )
    print(f"\ntraxtent win at the track size: {win:+.0%} disk efficiency")


if __name__ == "__main__":
    main()
