#!/usr/bin/env python3
"""Large-file workloads on the three FFS variants (the Table 2 story).

Creates two files and reads them back interleaved (the paper's ``diff``
experiment), then copies a file, on the unmodified, fast-start and
traxtent-aware FFS.  Sizes are scaled down so the example runs in seconds.

Run with:  python examples/ffs_large_files.py
"""

from repro.disksim import DiskDrive
from repro.fs import FFS, VARIANTS
from repro.workloads import copy_file, diff_two_files

PARTITION_MB = 1024
FILE_MB = 96


def fresh_fs(variant: str) -> FFS:
    drive = DiskDrive.for_model("Quantum Atlas 10K")
    return FFS(drive, partition_sectors=PARTITION_MB * 2048, variant=variant)


def main() -> None:
    print(f"Interleaved read of two {FILE_MB} MB files (diff) and a "
          f"{FILE_MB} MB copy, Quantum Atlas 10K:\n")
    baseline_diff = baseline_copy = None
    for variant in VARIANTS:
        diff = diff_two_files(fresh_fs(variant), file_mb=FILE_MB)
        copy = copy_file(fresh_fs(variant), file_mb=FILE_MB)
        if variant == "default":
            baseline_diff, baseline_copy = diff.run_seconds, copy.run_seconds
        print(f"  {variant:10s}  diff {diff.run_seconds:6.1f} s "
              f"(mean request {diff.mean_request_kb:5.1f} KB)   "
              f"copy {copy.run_seconds:6.1f} s")
    traxtent_diff = diff_two_files(fresh_fs("traxtent"), file_mb=FILE_MB).run_seconds
    print(f"\nTraxtent FFS speeds up the interleaved scan by "
          f"{1 - traxtent_diff / baseline_diff:.0%} "
          f"(the paper reports 19% for 512 MB files).")


if __name__ == "__main__":
    main()
