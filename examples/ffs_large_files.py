#!/usr/bin/env python3
"""Large-file workloads on the three FFS variants (the Table 2 story).

Creates two files and reads them back interleaved (the paper's ``diff``
experiment), then copies a file, on the unmodified, fast-start and
traxtent-aware FFS.  Sizes are scaled down so the example runs in seconds.

Run with:  python examples/ffs_large_files.py
"""

from repro import Comparison, DriveConfig, RunResult, build_drive
from repro.fs import FFS, VARIANTS
from repro.workloads import copy_file, diff_two_files

PARTITION_MB = 1024
FILE_MB = 96
DRIVE = DriveConfig(model="Quantum Atlas 10K")


def fresh_fs(variant: str) -> FFS:
    return FFS(build_drive(DRIVE), partition_sectors=PARTITION_MB * 2048,
               variant=variant)


def main() -> None:
    print(f"Interleaved read of two {FILE_MB} MB files (diff) and a "
          f"{FILE_MB} MB copy, {DRIVE.model}:\n")
    results: dict[str, RunResult] = {}
    for variant in VARIANTS:
        diff = diff_two_files(fresh_fs(variant), file_mb=FILE_MB)
        copy = copy_file(fresh_fs(variant), file_mb=FILE_MB)
        results[variant] = RunResult.from_ffs(
            diff, scenario=f"diff-{variant}", traxtent=variant == "traxtent"
        )
        print(f"  {variant:10s}  diff {diff.run_seconds:6.1f} s "
              f"(mean request {diff.mean_request_kb:5.1f} KB)   "
              f"copy {copy.run_seconds:6.1f} s")
    comparison = Comparison.of(results["default"], results["traxtent"])
    print()
    print(comparison.summary())
    print("\n(the paper reports a 19% faster interleaved scan "
          "for 512 MB files)")


if __name__ == "__main__":
    main()
