#!/usr/bin/env python3
"""Provisioning a video server with and without track-aligned access.

Answers the Section 5.4 questions: how many 4 Mb/s streams can one disk
serve, and what startup latency must a 10-disk array accept?

Run with:  python examples/video_server_provisioning.py
"""

from repro.disksim import DiskDrive, get_specs
from repro.videoserver import StreamSpec, VideoServer, hard_admission

DISKS = 10
ROUNDS = 80
STREAM_COUNTS = [35, 45, 55, 65, 75]


def main() -> None:
    specs = get_specs("Quantum Atlas 10K II")
    stream = StreamSpec(io_size_bytes=264 * 1024)  # one track per round
    print(f"4 Mb/s streams, {stream.io_size_bytes // 1024} KB per round, "
          f"round budget {stream.round_budget_s:.2f} s\n")

    # Hard real-time: worst-case admission control (analytic).
    for label, aligned in (("track-aligned", True), ("unaligned", False)):
        admission = hard_admission(specs, stream, aligned, zone_sectors_per_track=528)
        print(f"  hard real-time, {label:13s}: {admission.streams_per_disk:3d} "
              f"streams/disk (disk efficiency {admission.disk_efficiency:.0%})")

    # Soft real-time: measured round-time distributions.
    print()
    for label, aligned in (("track-aligned", True), ("unaligned", False)):
        server = VideoServer(
            DiskDrive.for_model("Quantum Atlas 10K II"), stream, aligned=aligned
        )
        admission = server.max_streams_soft(STREAM_COUNTS, ROUNDS, percentile=0.99)
        latency = stream.startup_latency_s(admission.round_time_s, DISKS)
        print(f"  soft real-time, {label:13s}: {admission.streams_per_disk:3d} "
              f"streams/disk, startup latency {latency:.1f} s on {DISKS} disks")

    print("\nThe paper reports 67 vs 36 (hard) and 70 vs 45 (soft) streams per disk.")


if __name__ == "__main__":
    main()
