#!/usr/bin/env python3
"""Provisioning a video server with and without track-aligned access.

Answers the Section 5.4 questions: how many 4 Mb/s streams can one disk
serve, and what startup latency must a 10-disk array accept?

Run with:  python examples/video_server_provisioning.py
"""

from repro import Comparison, DriveConfig, RunResult, build_drive, build_specs
from repro.videoserver import StreamSpec, VideoServer, hard_admission

DISKS = 10
ROUNDS = 80
STREAM_COUNTS = [35, 45, 55, 65, 75]
DRIVE = DriveConfig(model="Quantum Atlas 10K II")


def main() -> None:
    specs = build_specs(DRIVE)
    stream = StreamSpec(io_size_bytes=264 * 1024)  # one track per round
    print(f"4 Mb/s streams, {stream.io_size_bytes // 1024} KB per round, "
          f"round budget {stream.round_budget_s:.2f} s\n")

    # Hard real-time: worst-case admission control (analytic).
    for label, aligned in (("track-aligned", True), ("unaligned", False)):
        admission = hard_admission(specs, stream, aligned, zone_sectors_per_track=528)
        print(f"  hard real-time, {label:13s}: {admission.streams_per_disk:3d} "
              f"streams/disk (disk efficiency {admission.disk_efficiency:.0%})")

    # Soft real-time: measured round-time distributions, reduced to the
    # facade's unified result shape so the win prints itself.
    print()
    soft: dict[bool, RunResult] = {}
    for label, aligned in (("track-aligned", True), ("unaligned", False)):
        server = VideoServer(build_drive(DRIVE), stream, aligned=aligned)
        admission = server.max_streams_soft(STREAM_COUNTS, ROUNDS, percentile=0.99)
        latency = stream.startup_latency_s(admission.round_time_s, DISKS)
        soft[aligned] = RunResult.from_video(
            admission, scenario=f"soft-{label}", traxtent=aligned
        )
        print(f"  soft real-time, {label:13s}: {admission.streams_per_disk:3d} "
              f"streams/disk, startup latency {latency:.1f} s on {DISKS} disks")

    comparison = Comparison.of(soft[False], soft[True])
    gain = comparison.wins.get("streams_per_disk", 0.0)
    print(f"\nTraxtent win: {gain:+.0%} more streams per disk (soft real-time).")
    print("The paper reports 67 vs 36 (hard) and 70 vs 45 (soft) streams per disk.")


if __name__ == "__main__":
    main()
