#!/usr/bin/env python3
"""Scheduling policies as a campaign axis: policies x alignment x depth.

Every queue in the paper's experiments is FCFS; the scheduler subsystem
(`repro.disksim.sched`) opens dispatch policy as one more declarative axis.
This example runs the checked-in ``campaign_schedulers.json`` sweep -- the
five policies (fcfs / sstf / sptf / clook / traxtent batching) crossed with
track alignment and closed-replay queue depth -- and prints the mean
service time of every point.

The campaign disables the firmware cache, so with numpy installed every
point replays through the event-batched scheduled kernel
(``details["replay_path"] == "kernel_sched"``, ~10x the scalar queue
loop); without numpy it degrades to the bitwise-identical scalar path, so
the numbers below are the same either way.

Run with:  python examples/campaign_schedulers.py
The same sweep, from its checked-in JSON form:
           python -m repro sweep examples/campaign_schedulers.json
"""

import pathlib

from repro import Campaign

HERE = pathlib.Path(__file__).parent


def main() -> None:
    campaign = Campaign.load(str(HERE / "campaign_schedulers.json"))
    result = campaign.run()
    print(result.table(metrics=["response_mean_ms", "makespan_ms"]))
    print()
    print(result.summary())

    # With one request outstanding there is nothing to reorder: every
    # policy reproduces FCFS exactly.  At depth 8, position-aware dispatch
    # (SPTF) beats FCFS -- and the traxtent win survives it.
    def mean(policy, traxtent, depth):
        return result.find(
            {
                "options.scheduler": policy,
                "traxtent": traxtent,
                "options.queue_depth": depth,
            }
        ).result.metrics["response_mean_ms"]

    sptf, fcfs = mean("sptf", False, 8), mean("fcfs", False, 8)
    print()
    print(f"depth 8, unaligned: sptf {sptf:.2f} ms vs fcfs {fcfs:.2f} ms "
          f"({1 - sptf / fcfs:+.1%} service-time win)")
    aligned, unaligned = mean("sptf", True, 8), mean("sptf", False, 8)
    print(f"depth 8, sptf: aligned {aligned:.2f} ms vs unaligned "
          f"{unaligned:.2f} ms (traxtent win survives scheduling)")
    assert sptf < fcfs
    assert aligned < unaligned


if __name__ == "__main__":
    main()
