#!/usr/bin/env python3
"""Fault injection and degraded-mode fleets: a fail-stop drive under load.

A 2-drive storage service takes a fail-stop drive failure halfway through
a Poisson-arrival run.  Three runs of the same scenario show the whole
story on one config:

* **before** -- the fault-free baseline (no fault schedule at all; this
  config hashes and replays bitwise-identically to a pre-fault-layer run);
* **during** -- drive 0 fail-stops at t=2s with no spare: every request
  it would have served fails fast, availability drops below 1.0 and the
  error fraction reports the complement;
* **after**  -- the same fail-stop with a hot spare attached: requests
  are redirected, availability recovers to 1.0 and the p999 tail pays
  the price of the surviving spindle picking up the load.

Fault schedules are seeded and deterministic: re-running this script
reproduces every number bit for bit, and the schedule enters the scenario
hash, so fault campaigns cache and resume like any other sweep.

Run with:  python examples/faulty_fleet.py
"""

from repro import DriveFaultConfig, FaultConfig, Scenario

FAIL_AT_MS = 2_000.0


def service(name: str, faults: FaultConfig | None):
    scenario = (
        Scenario(name)
        .drive("Quantum Atlas 10K II", cylinders_per_zone=20, num_zones=3)
        .fleet(n_drives=2)
        .seed(11)
        .service(
            arrivals="poisson",
            slo_ms=25.0,
            rate_rps=120.0,
            n_requests=2000,
            read_fraction=0.7,
        )
    )
    if faults is not None:
        scenario = scenario.faults(faults)
    return scenario.run()


def report(label: str, result) -> None:
    m = result.metrics
    availability = m.get("availability", 1.0)
    print(f"{label}")
    print(f"  response p999   : {m['response_p999_ms']:.2f} ms")
    print(f"  availability    : {availability * 100.0:.2f}%")
    if "failed_requests" in m:
        print(f"  failed requests : {m['failed_requests']:.0f}")
    if m.get("redirected_requests"):
        print(f"  redirected      : {m['redirected_requests']:.0f} (to spare)")
    print(f"  replay path     : {result.details['fast_reason']}")


def main() -> None:
    print("fail-stop at t=2s on drive 0 of a 2-drive Poisson service\n")

    baseline = service("faulty-fleet-before", None)
    report("before (fault-free baseline)", baseline)

    fail_stop = FaultConfig(
        seed=5, drives={0: DriveFaultConfig(fail_stop_ms=FAIL_AT_MS)}
    )
    degraded = service("faulty-fleet-during", fail_stop)
    print()
    report("during (fail-stop, no spare -- degraded mode)", degraded)

    spared = FaultConfig(
        seed=5,
        drives={0: DriveFaultConfig(fail_stop_ms=FAIL_AT_MS, spare=True)},
    )
    recovered = service("faulty-fleet-after", spared)
    print()
    report("after (fail-stop with hot spare redirect)", recovered)

    # The queue-depth time series makes the failure visible on the
    # timeline: drive 0's queue empties for good once it fail-stops.
    times = degraded.details["queue_depth_times_ms"]
    series = degraded.details["queue_depth_per_drive"][0]
    busy_after = [
        depth for t, depth in zip(times, series) if t > FAIL_AT_MS and depth > 0
    ]
    print(
        f"\ndrive 0 queue samples after t={FAIL_AT_MS / 1000.0:.0f}s "
        f"with work queued: {len(busy_after)} (failed drives go idle)"
    )


if __name__ == "__main__":
    main()
