#!/usr/bin/env python3
"""Choosing an LFS segment size with track-aligned segments (Figure 10).

Computes the overall write cost (write cost x transfer inefficiency) for a
sweep of segment sizes under a synthetic Auspex-like write workload, for
both track-aligned and unaligned segment placement.

Run with:  python examples/lfs_segment_sizing.py
"""

from repro import DriveConfig, RunResult, build_drive
from repro.lfs import (
    AuspexLikeWorkload,
    OwcPoint,
    transfer_inefficiency_measured,
    write_cost_curve,
)

SEGMENT_SIZES_KB = [64, 128, 256, 512, 1024, 2048]


def main() -> None:
    workload = AuspexLikeWorkload(n_files=600, n_operations=6000, seed=3)
    live_bytes = int(
        workload.n_files * workload.small_file_bytes * 1.5
        + workload.n_files * workload.large_file_fraction * workload.large_file_bytes
    )
    log_sectors = int(live_bytes * 1.3) // 512
    costs = write_cost_curve(0, log_sectors, SEGMENT_SIZES_KB, workload)
    drive = build_drive(DriveConfig(model="Quantum Atlas 10K II"))

    print("segment  write-cost  OWC aligned  OWC unaligned")
    best: OwcPoint | None = None
    for size_kb in SEGMENT_SIZES_KB:
        aligned = OwcPoint(
            segment_kb=size_kb,
            write_cost=costs[size_kb],
            transfer_inefficiency=transfer_inefficiency_measured(
                drive, size_kb * 2, aligned=True, n_requests=80
            ),
        )
        unaligned_owc = costs[size_kb] * transfer_inefficiency_measured(
            drive, size_kb * 2, aligned=False, n_requests=80
        )
        if best is None or aligned.overall_write_cost < best.overall_write_cost:
            best = aligned
        print(f"{size_kb:6d}K  {costs[size_kb]:10.2f}  "
              f"{aligned.overall_write_cost:11.2f}  {unaligned_owc:13.2f}")
    print()
    print(RunResult.from_lfs(best, scenario="best-aligned-segment",
                             traxtent=True).summary())
    print(f"\nLowest aligned overall write cost at ~{best.segment_kb:.0f} KB "
          f"segments (the Atlas 10K II track is 264 KB); the paper computes "
          f"44% lower write cost for track-sized segments.")


if __name__ == "__main__":
    main()
