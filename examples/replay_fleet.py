"""Replay captured and synthetic workloads against a sharded drive fleet.

Demonstrates the scenario facade driving the full scale pipeline:

1. a Postmark transaction phase captured as a disk-level trace and replayed
   against a 4-drive fleet (unstriped: the trace addresses one drive's LBN
   space, so one shard stays hot),
2. whole-track-aligned synthetic reads striped over all 4 drives,
3. the same synthetic workload in closed (onereq-per-drive) mode.

Every experiment is a declarative ``Scenario``; the printed report reads
the underlying ``ReplayStats`` off each ``RunResult``.

Run with::

    PYTHONPATH=src python examples/replay_fleet.py
"""

from __future__ import annotations

from repro import Scenario

#: Reduced-capacity Atlas 10K II (identical timing, faster geometry scans).
DRIVE = {"model": "Quantum Atlas 10K II",
         "cylinders_per_zone": 400, "num_zones": 3}


def show(label: str, result) -> None:
    stats = result.replay
    print(f"\n=== {label} ===")
    print(f"  requests      : {stats.issued_requests} "
          f"({stats.split_requests} split across shard boundaries)")
    print(f"  makespan      : {stats.makespan_ms / 1000.0:.2f} s of simulated time")
    print(f"  throughput    : {stats.requests_per_second:.0f} req/s, "
          f"{stats.mb_per_second:.1f} MB/s")
    print(f"  response time : p50 {stats.response['p50']:.2f} ms | "
          f"p99 {stats.response['p99']:.2f} ms | max {stats.response['max']:.2f} ms")
    print(f"  efficiency    : {stats.efficiency:.2f} "
          f"(media transfer / mechanism busy time)")
    print(f"  peak in-flight: {stats.peak_outstanding}")
    for i, drive in enumerate(stats.per_drive):
        print(f"    drive {i}: {drive['requests']:.0f} requests, "
              f"utilization {drive['utilization']:.2f}")


def main() -> None:
    postmark = (
        Scenario("postmark-fleet")
        .drive(**DRIVE)
        .fleet(4)
        .workload("postmark", initial_files=200, transactions=600)
        .traxtent(False)         # capture on the unmodified FFS variant
        .options(stripe=False)   # keep the captured single-drive addresses
    )
    result = postmark.run()
    show(f"Postmark transaction phase "
         f"({result.replay.trace_requests} requests, 1 shard hot)", result)

    synthetic = (
        Scenario("aligned-fleet")
        .drive(**DRIVE)
        .fleet(4)
        .workload("synthetic", n_requests=5000, interarrival_ms=2.0)
        .traxtent(True)
        .seed(7)
    )
    show("Track-aligned reads striped over 4 drives (5000 requests)",
         synthetic.run())

    closed = (
        Scenario("aligned-closed", config=synthetic.config)
        .workload("synthetic", n_requests=1000)
        .closed()
    )
    show("Same workload, closed-loop (onereq per drive)", closed.run())


if __name__ == "__main__":
    main()
