"""Replay a captured workload trace against a sharded drive fleet.

Demonstrates the full scale pipeline added with the trace-replay engine:

1. capture the disk-level footprint of an FFS macro-workload as a Trace,
2. synthesise a raw-disk trace of whole-track reads (the paper's signature
   access shape),
3. replay both against a 4-drive LBN-range-sharded fleet and print the
   aggregate latency/throughput/efficiency report.

Run with::

    PYTHONPATH=src python examples/replay_fleet.py
"""

from __future__ import annotations

import random

from repro.disksim import DiskDrive, small_test_specs
from repro.sim import LbnRangeShard, Trace, TraceReplayEngine
from repro.workloads import Postmark, PostmarkConfig

MODEL_SPECS = small_test_specs(cylinders_per_zone=400, num_zones=3)


def show(label: str, stats) -> None:
    print(f"\n=== {label} ===")
    print(f"  requests      : {stats.issued_requests} "
          f"({stats.split_requests} split across shard boundaries)")
    print(f"  makespan      : {stats.makespan_ms / 1000.0:.2f} s of simulated time")
    print(f"  throughput    : {stats.requests_per_second:.0f} req/s, "
          f"{stats.mb_per_second:.1f} MB/s")
    print(f"  response time : p50 {stats.response['p50']:.2f} ms | "
          f"p99 {stats.response['p99']:.2f} ms | max {stats.response['max']:.2f} ms")
    print(f"  efficiency    : {stats.efficiency:.2f} "
          f"(media transfer / mechanism busy time)")
    print(f"  peak in-flight: {stats.peak_outstanding}")
    for i, drive in enumerate(stats.per_drive):
        print(f"    drive {i}: {drive['requests']:.0f} requests, "
              f"utilization {drive['utilization']:.2f}")


def postmark_trace() -> Trace:
    """Disk-level trace of a Postmark transaction phase."""
    drive = DiskDrive(MODEL_SPECS)
    return Postmark.to_trace(
        drive, PostmarkConfig(initial_files=200, transactions=600)
    )


def aligned_trace(fleet: LbnRangeShard, n: int = 5000) -> Trace:
    """Whole-track-aligned reads spread over the fleet's global space."""
    rng = random.Random(7)
    geometry = fleet.drives[0].geometry
    tracks = [
        (extent.first_lbn, extent.lbn_count) for extent in geometry.track_extents()
    ]
    per_drive = geometry.total_lbns
    trace = Trace()
    t = 0.0
    for _ in range(n):
        first, count = tracks[rng.randrange(len(tracks))]
        shard = rng.randrange(len(fleet))
        trace.append(t, shard * per_drive + first, count, "read")
        t += 2.0  # 2 ms interarrival: moderate offered load
    return trace


def main() -> None:
    fleet = LbnRangeShard([DiskDrive(MODEL_SPECS) for _ in range(4)])
    engine = TraceReplayEngine(fleet)

    trace = postmark_trace()
    # The Postmark trace addresses a single drive's LBN space; replaying it
    # against the fleet keeps everything on shard 0 -- compare with the
    # striped synthetic trace below to see the fan-out win.
    show(f"Postmark transaction phase ({len(trace)} requests, 1 shard hot)",
         engine.replay(trace))

    synthetic = aligned_trace(fleet)
    show(f"Track-aligned reads striped over 4 drives ({len(synthetic)} requests)",
         engine.replay(synthetic))

    closed = engine.replay_closed(synthetic.slice(0, 1000))
    show("Same trace, closed-loop (onereq per drive)", closed)


if __name__ == "__main__":
    main()
