#!/usr/bin/env python3
"""Quickstart: measure the benefit of track-aligned access on a simulated
Quantum Atlas 10K II and extract its track boundaries.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    DixtracExtractor,
    TraxtentMap,
    measure_point,
)
from repro.disksim import DiskDrive, ScsiInterface


def main() -> None:
    # 1. Build a simulated drive from the spec database.
    drive = DiskDrive.for_model("Quantum Atlas 10K II")
    specs = drive.specs
    track_sectors = specs.max_sectors_per_track
    print(f"Drive: {specs.name}, {specs.rpm} RPM, "
          f"{track_sectors * 512 // 1024} KB per track in the first zone")

    # 2. Compare track-aligned and unaligned random reads of one track.
    aligned = measure_point(drive, track_sectors, aligned=True, n_requests=400)
    unaligned = measure_point(drive, track_sectors, aligned=False, n_requests=400)
    print(f"Track-sized random reads (tworeq):")
    print(f"  aligned   head time {aligned.head_time_ms:5.2f} ms, "
          f"efficiency {aligned.efficiency:.2f}")
    print(f"  unaligned head time {unaligned.head_time_ms:5.2f} ms, "
          f"efficiency {unaligned.efficiency:.2f}")
    print(f"  -> efficiency gain {aligned.efficiency / unaligned.efficiency - 1:+.0%} "
          f"(the paper's headline is ~+50%)")

    # 3. Extract the track boundaries through SCSI queries (DIXtrac).
    extractor = DixtracExtractor(ScsiInterface(drive.geometry))
    traxtents, description = extractor.extract()
    truth = TraxtentMap.from_geometry(drive.geometry)
    print(f"DIXtrac found {len(traxtents)} traxtents with "
          f"{description.translations_used} address translations "
          f"(exact: {traxtents == truth})")
    first = traxtents[0]
    print(f"First traxtent: LBNs {first.first_lbn}..{first.last_lbn} "
          f"({first.length} sectors)")


if __name__ == "__main__":
    main()
