#!/usr/bin/env python3
"""Quickstart: the paper's headline experiment in one declarative Scenario.

Measures the disk-efficiency win of track-aligned access on a simulated
Quantum Atlas 10K II (tworeq random reads at the track size), then extracts
the drive's track boundaries the way DIXtrac does.

Run with:  python examples/quickstart.py
"""

from repro import Scenario


def main() -> None:
    # The whole experiment is one declarative scenario: drive model,
    # workload shape, and the traxtent on/off switch.
    aligned = (
        Scenario("aligned")
        .drive("Quantum Atlas 10K II")
        .efficiency(n_requests=400)     # tworeq reads, one track per request
        .traxtent(True)
    )
    unaligned = Scenario("unaligned", config=aligned.config).traxtent(False)

    comparison = unaligned.compare(aligned)
    print(comparison.summary())
    print("(the paper's headline is ~+50% efficiency at the track size)\n")

    # Under the hood the same drive can be characterised through SCSI
    # queries, which is how traxtents are found on real hardware.
    from repro.core import DixtracExtractor, TraxtentMap
    from repro.disksim import ScsiInterface

    drive = aligned.build_drive()
    extractor = DixtracExtractor(ScsiInterface(drive.geometry))
    traxtents, description = extractor.extract()
    truth = TraxtentMap.from_geometry(drive.geometry)
    print(f"DIXtrac found {len(traxtents)} traxtents with "
          f"{description.translations_used} address translations "
          f"(exact: {traxtents == truth})")
    first = traxtents[0]
    print(f"First traxtent: LBNs {first.first_lbn}..{first.last_lbn} "
          f"({first.length} sectors)")


if __name__ == "__main__":
    main()
