#!/usr/bin/env python3
"""Storage service under open-loop load: sharded fleet, Poisson arrivals.

The ``service`` scenario kind drives an LBN-sharded drive fleet with a
seeded arrival process, streamed chunk by chunk (the trace is never
materialized), and reports the numbers an operator would ask for: tail
response times (p50/p99/p999), saturation throughput, the SLO-violation
fraction and a per-drive queue-depth time series.

This example keeps the request count small so it runs in seconds on the
scalar path (no numpy needed); the chunked pipeline replays millions of
requests in bounded memory at kernel throughput when numpy is installed
-- the CI streaming-smoke job runs the same scenario shape at 5M requests
under a 500 MB RSS ceiling.

Run with:  python examples/storage_service.py
"""

from repro import Scenario


def main() -> None:
    # A 2-drive fleet of scaled-down Atlas 10K IIs (identical timing,
    # fewer cylinders) under 150 requests/second of Poisson arrivals,
    # judged against a 25 ms response-time SLO.
    result = (
        Scenario("storage-service")
        .drive("Quantum Atlas 10K II", cylinders_per_zone=20, num_zones=3)
        .fleet(n_drives=2)
        .seed(7)
        .service(
            arrivals="poisson",
            slo_ms=25.0,
            rate_rps=150.0,
            n_requests=3000,
            read_fraction=0.7,
        )
        .run()
    )

    m = result.metrics
    print("storage service under open-loop Poisson load")
    print(f"  requests        : {m['requests']:.0f}")
    print(f"  offered load    : 150 rps   achieved: {m['throughput_rps']:.0f} rps")
    print(f"  saturation      : {m['saturation_rps']:.0f} rps")
    print(f"  response p50    : {m['response_p50_ms']:.2f} ms")
    print(f"  response p99    : {m['response_p99_ms']:.2f} ms")
    print(f"  response p999   : {m['response_p999_ms']:.2f} ms")
    print(
        f"  SLO (25 ms)     : {m['slo_violation_fraction'] * 100.0:.1f}% "
        "of requests over budget"
    )

    # Per-drive queue depth over time: the load balance of the shard map.
    times = result.details["queue_depth_times_ms"]
    for drive, series in enumerate(result.details["queue_depth_per_drive"]):
        peak = max(series)
        peak_at = times[series.index(peak)]
        print(
            f"  drive {drive}: peak queue depth {peak:.0f} "
            f"at t={peak_at / 1000.0:.1f}s"
        )


if __name__ == "__main__":
    main()
